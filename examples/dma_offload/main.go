// Demonstrate the enhanced DMA engine (paper §5): build real 64-byte
// aggregation descriptors over a CSR graph laid out in a virtual address
// space (Fig. 9), execute them functionally on the engine model
// (Algorithm 4), verify the results bit-match the software aggregation,
// exercise descriptor splitting and fault handling, and finally run the
// cycle-level timing model to show the tracking-table scaling of Fig. 16.
//
// This example reaches into the library's internal packages on purpose: it
// is a tour of the hardware model, not of the public training API.
//
//	go run ./examples/dma_offload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphite/internal/dma"
	"graphite/internal/graph"
	"graphite/internal/memsim"
	"graphite/internal/sparse"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

func main() {
	const (
		numVertices = 400
		features    = 96
	)
	g, err := graph.GenerateProfile(graph.Wikipedia, numVertices)
	if err != nil {
		log.Fatal(err)
	}
	g = g.AddSelfLoops()
	factors := sparse.Factors(g, sparse.NormGCN)
	h := tensor.NewMatrix(numVertices, features)
	h.FillRandom(rand.New(rand.NewSource(1)), 1)

	// Lay the arrays out in the engine's virtual address space, exactly
	// the Fig. 9 picture: IN = feature matrix (padded rows), IDX = the CSR
	// column array, FACTOR = the CSR value array, OUT = the aggregation
	// matrix, STATUS = per-edge completion records.
	const (
		inBase     = 0x10_0000
		outBase    = 0x90_0000
		idxBase    = 0x120_0000
		factorBase = 0x130_0000
		statusBase = 0x140_0000
	)
	var mem dma.SliceMemory
	out := make([]float32, numVertices*h.Stride)
	status := make([]uint8, g.NumEdges())
	for _, e := range []error{
		mem.MapF32(inBase, h.Data),
		mem.MapF32(outBase, out),
		mem.MapI32(idxBase, g.Col),
		mem.MapF32(factorBase, factors),
		mem.MapU8(statusBase, status),
	} {
		if e != nil {
			log.Fatal(e)
		}
	}

	engine := dma.NewEngine(dma.DefaultEngineConfig())
	fmt.Printf("engine storage: %d bytes (paper: 4.5KB)\n", engine.Config().StorageBytes())
	tel := telemetry.New(0)
	engine.SetTelemetry(tel)

	strideBytes := uint64(h.Stride) * 4
	descriptorFor := func(v int) dma.Descriptor {
		return dma.Descriptor{
			Red: dma.RedSum, Bin: dma.BinMul, IdxT: dma.Idx32, ValT: dma.Val32,
			E: uint32(features), S: uint32(strideBytes), N: uint32(g.Degree(v)),
			IDX:    idxBase + uint64(g.Ptr[v])*4,
			IN:     inBase,
			OUT:    outBase + uint64(v)*strideBytes,
			FACTOR: factorBase + uint64(g.Ptr[v])*4,
			STATUS: statusBase + uint64(g.Ptr[v]),
		}
	}

	// One descriptor per vertex; show the wire format for the first.
	d0 := descriptorFor(0)
	wire := d0.Encode()
	fmt.Printf("vertex 0 descriptor (%d bytes on the wire): % x ...\n", len(wire), wire[:16])

	for v := 0; v < numVertices; v++ {
		d := descriptorFor(v)
		if err := engine.Execute(&d, &mem); err != nil {
			log.Fatalf("vertex %d: %v", v, err)
		}
	}

	// Verify against the software SpMM aggregation.
	want := tensor.NewMatrix(numVertices, features)
	sparse.SpMM(want, g, factors, h, 0)
	var maxDiff float64
	for v := 0; v < numVertices; v++ {
		for j := 0; j < features; j++ {
			d := float64(out[v*h.Stride+j] - want.At(v, j))
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("DMA vs software aggregation: max |diff| = %.2g over %d vertices\n", maxDiff, numVertices)
	if maxDiff > 1e-4 {
		log.Fatal("DMA aggregation diverged from software")
	}
	fmt.Printf("telemetry: %d descriptors executed, %.1f MB moved by the engine\n",
		tel.Counter(telemetry.CtrDMADescriptors),
		float64(tel.Counter(telemetry.CtrDMABytesMoved))/1e6)

	// §5.2's splitting example: a 400-element vector on a 256-element
	// output buffer becomes descriptors of 256 + 144 elements.
	big := dma.Descriptor{Red: dma.RedSum, E: 400, S: 1600, N: 3, IN: inBase, OUT: outBase}
	parts := big.Split(256)
	fmt.Printf("split 400-element descriptor: parts of %d and %d elements\n", parts[0].E, parts[1].E)

	// Fault handling: point an index out of bounds and watch the
	// completion record.
	bad := descriptorFor(1)
	badIdx := []int32{0, 9_999_999}
	badStatus := make([]uint8, 2)
	if err := mem.MapI32(0x200_0000, badIdx); err != nil {
		log.Fatal(err)
	}
	if err := mem.MapU8(0x210_0000, badStatus); err != nil {
		log.Fatal(err)
	}
	bad.IDX, bad.N, bad.STATUS, bad.Bin = 0x200_0000, 2, 0x210_0000, dma.BinNone
	if err := engine.Execute(&bad, &mem); err != nil {
		fmt.Printf("fault injection: engine reported %q; completion records = %v (1=OK, 2=fault)\n",
			err, badStatus)
	} else {
		log.Fatal("fault injection silently succeeded")
	}

	// Timing model: the Fig. 16 tracking-table sweep on this graph.
	fmt.Println("\ntracking-table sweep (normalized DMA-aggregation time, Fig. 16):")
	var base int64
	for _, entries := range []int{8, 16, 32, 64} {
		cfg := dma.DefaultEngineConfig()
		cfg.TrackingEntries = entries
		m := memsim.NewMachine(memsim.DefaultConfig(8))
		eng := dma.NewTimedEngine(m, 0, cfg)
		am := memsim.NewAddressMap()
		hReg := am.Alloc(numVertices, int64(h.Stride)*4)
		colReg := am.Alloc(1, int64(g.NumEdges())*4)
		outReg := am.Alloc(numVertices, int64(h.Stride)*4)
		var last int64
		rowLines := int64(h.Stride) * 4 / memsim.LineBytes
		for v := 0; v < numVertices; v++ {
			job := &dma.Job{
				Ready: eng.Cycle(),
				Idx:   []dma.Span{{First: (colReg.Base + int64(g.Ptr[v])*4) / memsim.LineBytes, Count: 1}},
				Elems: features,
			}
			for _, u := range g.Neighbors(v) {
				job.Inputs = append(job.Inputs, dma.Span{
					First: (hReg.Base + int64(u)*hReg.Stride) / memsim.LineBytes, Count: rowLines})
				job.InputGate = append(job.InputGate, 0)
			}
			job.Output = dma.Span{First: (outReg.Base + int64(v)*outReg.Stride) / memsim.LineBytes, Count: rowLines}
			last = eng.Run(job)
		}
		if base == 0 {
			base = last
		}
		fmt.Printf("  %2d entries: %.2f\n", entries, float64(last)/float64(base))
	}
}
