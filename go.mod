module graphite

go 1.22
