package graphite

import (
	"bytes"
	"testing"
)

func TestEngineInferAllImplementations(t *testing.T) {
	g, err := GenerateGraph(ProfileProducts, 300)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomFeatures(g.NumVertices(), 16, 0.5, 1)
	var ref *Matrix
	for _, impl := range []Implementation{Default, DistGNNBaseline, MKLBaseline, Basic, Fusion, Compression, Combined} {
		eng, err := NewEngine(Config{Model: GCN, Dims: []int{16, 24, 4}, Impl: impl, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		w, err := eng.NewWorkload(g, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		logits, err := eng.Infer(w)
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if logits.Rows != g.NumVertices() || logits.Cols != 4 {
			t.Fatalf("%v: logits %dx%d", impl, logits.Rows, logits.Cols)
		}
		if ref == nil {
			ref = logits
			continue
		}
		var maxd float64
		for i := 0; i < logits.Rows; i++ {
			for j := 0; j < logits.Cols; j++ {
				d := float64(logits.At(i, j) - ref.At(i, j))
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
			}
		}
		if maxd > 2e-3 {
			t.Errorf("%v differs from reference by %g", impl, maxd)
		}
	}
}

func TestEngineTrainImprovesAccuracy(t *testing.T) {
	g, err := GenerateGraph(ProfileWikipedia, 250)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomFeatures(g.NumVertices(), 12, 0, 2)
	labels := make([]int32, g.NumVertices())
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	eng, err := NewEngine(Config{Model: SAGE, Dims: []int{12, 16, 3}, Impl: Combined,
		LocalityOrder: true, LearningRate: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := eng.NewWorkload(g, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.NewTrainer(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Train(12)
	if err != nil {
		t.Fatal(err)
	}
	if res[len(res)-1].Loss >= res[0].Loss {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", res[0].Loss, res[len(res)-1].Loss)
	}
}

func TestEngineRejectsMismatchedFeatures(t *testing.T) {
	g, err := GenerateGraph(ProfilePapers, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{Model: GCN, Dims: []int{8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewWorkload(g, NewMatrix(g.NumVertices(), 16), nil); err == nil {
		t.Fatal("mismatched feature width accepted")
	}
}

func TestGraphIORoundTripThroughPublicAPI(t *testing.T) {
	g, err := NewGraphFromEdges(3, []int32{0, 1, 2}, []int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 {
		t.Fatalf("round trip lost edges: %d", back.NumEdges())
	}
}

func TestReorderForLocalityIsPermutation(t *testing.T) {
	g, err := GenerateGraph(ProfileTwitter, 400)
	if err != nil {
		t.Fatal(err)
	}
	order := ReorderForLocality(g)
	seen := make([]bool, g.NumVertices())
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate in order")
		}
		seen[v] = true
	}
}

func TestImplementationStrings(t *testing.T) {
	if Default.String() != "combined" {
		t.Fatalf("Default = %q", Default.String())
	}
	if DistGNNBaseline.String() != "DistGNN" || Fusion.String() != "fusion" {
		t.Fatal("labels wrong")
	}
}

func TestNumParams(t *testing.T) {
	eng, err := NewEngine(Config{Model: GCN, Dims: []int{10, 20, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumParams() != 10*20+20+20*5+5 {
		t.Fatalf("params %d", eng.NumParams())
	}
	if eng.Config().LearningRate != 0.1 {
		t.Fatal("default learning rate not applied")
	}
}
