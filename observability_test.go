package graphite

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"graphite/internal/obsrv"
)

// serveEngine starts the engine's observability plane and waits for it to
// bind, returning the base URL and a stop func that also waits for Serve to
// return.
func serveEngine(t *testing.T, e *Engine) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- e.Serve(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for e.ObservabilityAddr() == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("Serve never bound: %v", <-errc)
		}
		time.Sleep(time.Millisecond)
	}
	addr := e.ObservabilityAddr()
	return "http://" + addr, func() error {
		cancel()
		return <-errc
	}
}

// TestEngineServeExposesMetrics is the end-to-end contract of Config.Listen:
// a run's counters and histograms are scrapeable mid-flight as valid
// Prometheus text, the probes answer, and cancelling the Serve context
// drains cleanly.
func TestEngineServeExposesMetrics(t *testing.T) {
	g, err := GenerateGraph(ProfileProducts, 300)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomFeatures(g.NumVertices(), 16, 0.5, 1)
	eng, err := NewEngine(Config{
		Model:  GCN,
		Dims:   []int{16, 8, 4},
		Listen: "127.0.0.1:0",
		SLOs:   []SLO{{Phase: "epoch", Quantile: 0.99, Threshold: time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := serveEngine(t, eng)

	w, err := eng.NewWorkload(g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(w); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	expo, err := obsrv.ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if v, ok := expo.Value("graphite_vertices_aggregated_total", nil); !ok || v <= 0 {
		t.Fatalf("vertices counter = %v ok=%v after Infer", v, ok)
	}
	if fam := expo.Family("graphite_phase_latency_seconds_count"); len(fam) == 0 {
		t.Fatal("no phase latency histograms after Infer")
	}
	if _, ok := expo.Value("graphite_slo_burn_rate",
		map[string]string{"phase": "epoch", "quantile": "0.99"}); !ok {
		t.Fatal("configured SLO series missing")
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ok idle") {
		t.Fatalf("/readyz = %d %q, want ok idle", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	if err := stop(); err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if eng.ObservabilityAddr() != "" {
		t.Fatal("address still bound after Serve returned")
	}
}

// TestEngineServeGuards pins the error paths: Serve without Listen, double
// Serve, and invalid SLOs at construction.
func TestEngineServeGuards(t *testing.T) {
	eng, err := NewEngine(Config{Model: GCN, Dims: []int{4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Serve(context.Background()); err == nil {
		t.Fatal("Serve without Listen succeeded")
	}

	eng2, err := NewEngine(Config{Model: GCN, Dims: []int{4, 2}, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	_, stop := serveEngine(t, eng2)
	if err := eng2.Serve(context.Background()); err == nil {
		t.Fatal("second Serve succeeded")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewEngine(Config{Model: GCN, Dims: []int{4, 2}, SLOs: []SLO{{Phase: "", Quantile: 0.5, Threshold: time.Second}}}); err == nil {
		t.Fatal("invalid SLO accepted")
	}
}
