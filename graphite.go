// Package graphite is a from-scratch reproduction of "Graphite: Optimizing
// Graph Neural Networks on CPUs Through Cooperative Software-Hardware
// Techniques" (Gong et al., ISCA 2022).
//
// It provides high-performance full-batch GNN inference and training on
// CPUs through the paper's three software techniques — layer fusion (§4.2),
// mask-based feature compression (§4.3), and temporal-locality vertex
// reordering (§4.4) — on top of a parallel width-specialised aggregation
// substrate (§4.1), plus a cycle-approximate model of the paper's enhanced
// DMA engine (§5) for the hardware-assisted results.
//
// Quick start:
//
//	g, _ := graphite.GenerateGraph(graphite.ProfileProducts, 10_000)
//	eng, _ := graphite.NewEngine(graphite.Config{
//	    Model: graphite.GCN,
//	    Dims:  []int{100, 256, 47},
//	    Impl:  graphite.Combined,
//	})
//	x := graphite.NewMatrix(g.NumVertices(), 100)
//	w, _ := eng.NewWorkload(g, x, nil)
//	logits, _ := eng.Infer(w)
//
// See the examples/ directory for complete programs and cmd/graphite-bench
// for the harness that regenerates every table and figure of the paper's
// evaluation.
package graphite

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/obsrv"
	"graphite/internal/sched"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Graph is a directed graph in compressed sparse row form.
type Graph = graph.CSR

// Matrix is a row-major float32 feature matrix with cache-line-padded rows.
type Matrix = tensor.Matrix

// DegreeStats summarises a degree distribution (Table 3 columns).
type DegreeStats = graph.DegreeStats

// Model selects the GNN model (Table 2).
type Model = gnn.Kind

// Supported models.
const (
	GCN  = gnn.GCN
	SAGE = gnn.SAGE
	GIN  = gnn.GIN
)

// Implementation selects the layer implementation variant (§7.1). The zero
// value picks Combined, the full software stack.
type Implementation int

// Implementation variants, from the baselines to the full software stack.
const (
	Default Implementation = iota
	DistGNNBaseline
	MKLBaseline
	Basic
	Fusion
	Compression
	Combined
)

// String implements fmt.Stringer with the paper's labels.
func (i Implementation) String() string { return i.impl().String() }

func (i Implementation) impl() gnn.Impl {
	switch i {
	case DistGNNBaseline:
		return gnn.ImplDistGNN
	case MKLBaseline:
		return gnn.ImplMKL
	case Basic:
		return gnn.ImplBasic
	case Fusion:
		return gnn.ImplFused
	case Compression:
		return gnn.ImplCompressed
	default:
		return gnn.ImplCombined
	}
}

// Profile identifies one of the paper's dataset shapes (Table 3),
// reproduced by the synthetic generator.
type Profile = graph.Profile

// Dataset profiles.
const (
	ProfileProducts  = graph.Products
	ProfileWikipedia = graph.Wikipedia
	ProfilePapers    = graph.Papers
	ProfileTwitter   = graph.Twitter
)

// Workload is a prepared (graph, features, labels) bundle.
type Workload = gnn.Workload

// EpochResult reports one training epoch.
type EpochResult = gnn.EpochResult

// WorkerError is a panic recovered inside a scheduler worker goroutine. API
// calls that hit one (e.g. a shape-corrupted workload crashing a kernel)
// return an error wrapping it — match with errors.As — instead of killing
// the process; it carries the worker id, the chunk of the iteration space
// it was executing, the recovered value, and the worker's stack.
type WorkerError = sched.WorkerError

// Config configures an Engine.
type Config struct {
	// Model is GCN or SAGE.
	Model Model
	// Dims is the layer width chain: input, hidden..., output classes.
	Dims []int
	// Impl selects the implementation variant (default Combined).
	Impl Implementation
	// Dropout is the training-time hidden-feature dropout (§2.2).
	Dropout float64
	// Threads bounds worker parallelism (<=0 → GOMAXPROCS).
	Threads int
	// BlockSize is the fused block B (§4.2; default 64).
	BlockSize int
	// LocalityOrder enables the §4.4 vertex reordering. The paper applies
	// it to training, where the O(|E|+|V|) cost amortises over epochs.
	LocalityOrder bool
	// LearningRate is the SGD step for trainers (default 0.1).
	LearningRate float32
	// Seed makes weight init and dropout deterministic.
	Seed int64
	// Trace, when non-nil, enables telemetry and receives the Chrome
	// trace_event JSON (loadable in chrome://tracing or Perfetto) when
	// WriteTrace is called after a run.
	Trace io.Writer
	// Metrics enables kernel counters and scheduler accounting without
	// span export; implied by Trace. Read results via Metrics() or
	// WriteMetrics.
	Metrics bool
	// Listen, when non-empty, is the host:port the live observability
	// plane binds when Serve is called (":9090", "127.0.0.1:0"). Setting
	// it implies Metrics: the /metrics, probe, trace, and pprof endpoints
	// scrape this engine's telemetry while it runs. Runs without Listen
	// pay nothing — the plane is strictly read-side.
	Listen string
	// SLOs are latency objectives the observability plane tracks and
	// exposes as graphite_slo_* series (burn rate, breach state). Ignored
	// unless Listen is set.
	SLOs []SLO
}

// SLO is a latency service-level objective tracked by the observability
// plane: "the Quantile-th percentile of phase latency stays under
// Threshold". See obsrv.SLO for field semantics.
type SLO = obsrv.SLO

// ParseSLO parses the "phase:quantile:threshold" flag form, e.g.
// "epoch:0.99:250ms".
func ParseSLO(s string) (SLO, error) { return obsrv.ParseSLO(s) }

// ParseSLOs parses a comma-separated list of ParseSLO forms.
func ParseSLOs(s string) ([]SLO, error) { return obsrv.ParseSLOs(s) }

// Engine runs GNN inference and builds trainers with a fixed configuration.
type Engine struct {
	cfg Config
	net *gnn.Network
	tel *telemetry.Sink

	inflight atomic.Int64 // API calls currently executing, feeds /readyz
	obsMu    sync.Mutex
	obs      *obsrv.Server
}

// NewEngine validates the config and initialises the network weights.
func NewEngine(cfg Config) (*Engine, error) {
	net, err := gnn.NewNetwork(gnn.Config{Kind: cfg.Model, Dims: cfg.Dims, Dropout: cfg.Dropout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	for _, o := range cfg.SLOs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	e := &Engine{cfg: cfg, net: net}
	if cfg.Trace != nil || cfg.Metrics || cfg.Listen != "" {
		e.tel = telemetry.New(0)
	}
	return e, nil
}

// Serve binds the Config.Listen address and runs the live observability
// plane — /metrics (Prometheus text format), /healthz, /readyz, /events,
// /trace, /debug/pprof — until ctx is cancelled, then drains and returns.
// The readiness probe reflects engine state: ready while serving, with the
// number of in-flight runs as detail, 503 once the drain begins.
//
// Serve blocks; run it in its own goroutine alongside the workload. The
// bound address (useful with port 0) is available from ObservabilityAddr as
// soon as Serve is up.
func (e *Engine) Serve(ctx context.Context) error {
	if e.cfg.Listen == "" {
		return fmt.Errorf("graphite: Serve needs Config.Listen")
	}
	e.obsMu.Lock()
	if e.obs != nil {
		e.obsMu.Unlock()
		return fmt.Errorf("graphite: observability plane already serving on %s", e.obs.Addr())
	}
	var srv *obsrv.Server
	srv = obsrv.NewServer(obsrv.Options{
		Sink: e.tel,
		SLOs: e.cfg.SLOs,
		Ready: func() (bool, string) {
			if !srv.Serving() {
				return false, "draining"
			}
			if n := e.inflight.Load(); n > 0 {
				return true, fmt.Sprintf("%d runs in flight", n)
			}
			return true, "idle"
		},
	})
	if err := srv.Start(e.cfg.Listen); err != nil {
		e.obsMu.Unlock()
		return err
	}
	e.obs = srv
	e.obsMu.Unlock()

	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(sctx)
	e.obsMu.Lock()
	e.obs = nil
	e.obsMu.Unlock()
	return err
}

// ObservabilityAddr returns the bound address of the observability plane
// ("127.0.0.1:43117"), or "" when Serve is not running. With Listen port 0
// this is how callers learn the kernel-picked port.
func (e *Engine) ObservabilityAddr() string {
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	if e.obs == nil {
		return ""
	}
	return e.obs.Addr()
}

// beginRun marks one API run in flight for the readiness probe; the
// returned func ends it.
func (e *Engine) beginRun() func() {
	e.inflight.Add(1)
	return func() { e.inflight.Add(-1) }
}

// Metrics is a point-in-time copy of the engine's kernel counters and
// per-worker scheduler accounting (zero-valued when telemetry is off).
type Metrics = telemetry.Snapshot

// Metrics snapshots the engine's telemetry counters.
func (e *Engine) Metrics() Metrics { return e.tel.Snapshot() }

// WriteMetrics writes the plain-text metrics snapshot (Prometheus-style
// "name value" lines) to w.
func (e *Engine) WriteMetrics(w io.Writer) error { return e.tel.WriteMetrics(w) }

// WriteTrace exports the phase spans recorded so far as Chrome trace_event
// JSON to the Config.Trace writer.
func (e *Engine) WriteTrace() error {
	if e.cfg.Trace == nil {
		return fmt.Errorf("graphite: no Config.Trace writer configured")
	}
	return e.tel.WriteTrace(e.cfg.Trace)
}

// ResetTelemetry clears counters and recorded spans, so successive runs on
// one engine can be profiled independently.
func (e *Engine) ResetTelemetry() { e.tel.Reset() }

// NumParams returns the number of trainable scalars.
func (e *Engine) NumParams() int { return e.net.NumParams() }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// NewWorkload prepares a graph + features (+ optional labels) for this
// engine: self loops are added and the model's normalization factors are
// precomputed (shared by all kernels and DMA descriptors).
func (e *Engine) NewWorkload(g *Graph, x *Matrix, labels []int32) (*Workload, error) {
	if len(e.cfg.Dims) > 0 && x != nil && x.Cols != e.cfg.Dims[0] {
		return nil, fmt.Errorf("graphite: features have %d columns, engine expects %d", x.Cols, e.cfg.Dims[0])
	}
	return gnn.NewWorkload(g, e.cfg.Model, x, labels)
}

func (e *Engine) runOptions(w *Workload) gnn.RunOptions {
	opts := gnn.RunOptions{
		Impl:      e.cfg.Impl.impl(),
		Threads:   e.cfg.Threads,
		BlockSize: e.cfg.BlockSize,
		Tel:       e.tel,
	}
	if e.cfg.LocalityOrder {
		sp := e.tel.Begin(telemetry.PhaseReorder)
		opts.Order = locality.Reorder(w.G)
		sp.End()
	}
	return opts
}

// Infer runs a full-batch forward pass and returns the logits. Kernel
// worker panics are contained: the process survives and the error wraps a
// *WorkerError.
func (e *Engine) Infer(w *Workload) (*Matrix, error) {
	return e.InferContext(context.Background(), w)
}

// InferContext is Infer under a context: cancellation aborts the pass at
// kernel chunk granularity with ctx's error. A background context keeps the
// kernels on their uncancellable fast path.
func (e *Engine) InferContext(ctx context.Context, w *Workload) (*Matrix, error) {
	defer e.beginRun()()
	st, err := gnn.InferContext(ctx, e.net, w, e.runOptions(w))
	if err != nil {
		return nil, err
	}
	return st.Logits(), nil
}

// InferVerticesContext runs batched per-vertex inference over a raw graph:
// the requested vertices' K-hop neighbourhoods are sampled backwards
// through the layers (fanouts, one per layer; <= 0 or nil = full
// neighbourhood), their features gathered, and the layers executed through
// the ctx-aware scheduling path. It returns one logits row per requested
// vertex, aligned with vertices.
//
// This is the serving-layer entry point: the graphite-serve batcher
// coalesces concurrent single-vertex requests into one vertices slice and
// dispatches it here with the batch's deadline as ctx. With full fanouts
// the result matches the corresponding InferContext rows; bounded fanouts
// trade exactness for per-batch latency, the DGL-style sampled serving
// the paper profiles in §3.
func (e *Engine) InferVerticesContext(ctx context.Context, g *Graph, x *Matrix, vertices []int32, fanouts []int) (*Matrix, error) {
	defer e.beginRun()()
	if len(e.cfg.Dims) > 0 && x != nil && x.Cols != e.cfg.Dims[0] {
		return nil, fmt.Errorf("graphite: features have %d columns, engine expects %d", x.Cols, e.cfg.Dims[0])
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	opts := gnn.RunOptions{Threads: e.cfg.Threads, Tel: e.tel}
	return gnn.InferVerticesContext(ctx, e.net, g, x, vertices, fanouts, rng, opts)
}

// SaveCheckpoint serialises the engine's network weights so an interrupted
// or finished training run can resume later (LoadCheckpoint).
func (e *Engine) SaveCheckpoint(w io.Writer) error { return e.net.Save(w) }

// LoadCheckpoint replaces the engine's network weights with a checkpoint
// written by SaveCheckpoint, after validating that its model kind and layer
// dimensions match the engine's configuration.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	net, err := gnn.Load(r)
	if err != nil {
		return err
	}
	if net.Kind != e.net.Kind {
		return fmt.Errorf("graphite: checkpoint is a %v model, engine is %v", net.Kind, e.net.Kind)
	}
	if net.NumLayers() != e.net.NumLayers() {
		return fmt.Errorf("graphite: checkpoint has %d layers, engine has %d", net.NumLayers(), e.net.NumLayers())
	}
	for k, l := range net.Layers {
		el := e.net.Layers[k]
		if l.In() != el.In() || l.Out() != el.Out() {
			return fmt.Errorf("graphite: checkpoint layer %d is %dx%d, engine expects %dx%d",
				k, l.In(), l.Out(), el.In(), el.Out())
		}
	}
	e.net = net
	return nil
}

// Trainer drives full-batch training epochs.
type Trainer struct {
	inner *gnn.Trainer
	eng   *Engine
}

// NewTrainer builds a trainer over a labeled workload.
func (e *Engine) NewTrainer(w *Workload) (*Trainer, error) {
	tr, err := gnn.NewTrainer(e.net, w, e.runOptions(w), e.cfg.LearningRate)
	if err != nil {
		return nil, err
	}
	return &Trainer{inner: tr, eng: e}, nil
}

// Epoch runs one training epoch.
func (t *Trainer) Epoch() (EpochResult, error) {
	defer t.eng.beginRun()()
	return t.inner.Epoch()
}

// EpochContext runs one training epoch under a context. A cancelled epoch
// never mutates the weights: the context is re-checked after backward,
// before the optimizer step.
func (t *Trainer) EpochContext(ctx context.Context) (EpochResult, error) {
	defer t.eng.beginRun()()
	return t.inner.EpochContext(ctx)
}

// Train runs the given number of epochs.
func (t *Trainer) Train(epochs int) ([]EpochResult, error) {
	defer t.eng.beginRun()()
	return t.inner.Train(epochs)
}

// TrainContext runs up to the given number of epochs under ctx. On
// cancellation it returns the completed epochs' results plus ctx's error,
// with the engine's weights at the last completed epoch — ready for
// Engine.SaveCheckpoint.
func (t *Trainer) TrainContext(ctx context.Context, epochs int) ([]EpochResult, error) {
	defer t.eng.beginRun()()
	return t.inner.TrainContext(ctx, epochs)
}

// CompletedEpochs returns how many epochs have completed their weight
// update since the trainer was built.
func (t *Trainer) CompletedEpochs() int { return t.inner.CompletedEpochs() }

// Accuracy scores logits against labels (label < 0 = unlabeled).
func Accuracy(logits *Matrix, labels []int32) float64 { return gnn.Accuracy(logits, labels) }

// NewMatrix allocates a zeroed rows×cols feature matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// RandomFeatures fills a fresh rows×cols matrix with uniform values and the
// given zero fraction (the paper's synthetic feature population, §6).
func RandomFeatures(rows, cols int, sparsity float64, seed int64) *Matrix {
	m := tensor.NewMatrix(rows, cols)
	m.FillSparse(rand.New(rand.NewSource(seed)), 1, sparsity)
	return m
}

// GenerateGraph builds a scaled synthetic instance of a Table 3 dataset
// profile.
func GenerateGraph(p Profile, numVertices int) (*Graph, error) {
	return graph.GenerateProfile(p, numVertices)
}

// NewGraphFromEdges builds a graph from (src, dst) edge pairs.
func NewGraphFromEdges(numVertices int, src, dst []int32) (*Graph, error) {
	return graph.FromEdges(numVertices, src, dst)
}

// ReadGraph parses a plain-text edge list.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes a graph as a plain-text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReorderForLocality computes the §4.4 processing order explicitly, for
// callers that want to inspect or persist it.
func ReorderForLocality(g *Graph) []int32 { return locality.Reorder(g) }
