// Package graphite is a from-scratch reproduction of "Graphite: Optimizing
// Graph Neural Networks on CPUs Through Cooperative Software-Hardware
// Techniques" (Gong et al., ISCA 2022).
//
// It provides high-performance full-batch GNN inference and training on
// CPUs through the paper's three software techniques — layer fusion (§4.2),
// mask-based feature compression (§4.3), and temporal-locality vertex
// reordering (§4.4) — on top of a parallel width-specialised aggregation
// substrate (§4.1), plus a cycle-approximate model of the paper's enhanced
// DMA engine (§5) for the hardware-assisted results.
//
// Quick start:
//
//	g, _ := graphite.GenerateGraph(graphite.ProfileProducts, 10_000)
//	eng, _ := graphite.NewEngine(graphite.Config{
//	    Model: graphite.GCN,
//	    Dims:  []int{100, 256, 47},
//	    Impl:  graphite.Combined,
//	})
//	x := graphite.NewMatrix(g.NumVertices(), 100)
//	w, _ := eng.NewWorkload(g, x, nil)
//	logits, _ := eng.Infer(w)
//
// See the examples/ directory for complete programs and cmd/graphite-bench
// for the harness that regenerates every table and figure of the paper's
// evaluation.
package graphite

import (
	"fmt"
	"io"
	"math/rand"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Graph is a directed graph in compressed sparse row form.
type Graph = graph.CSR

// Matrix is a row-major float32 feature matrix with cache-line-padded rows.
type Matrix = tensor.Matrix

// DegreeStats summarises a degree distribution (Table 3 columns).
type DegreeStats = graph.DegreeStats

// Model selects the GNN model (Table 2).
type Model = gnn.Kind

// Supported models.
const (
	GCN  = gnn.GCN
	SAGE = gnn.SAGE
	GIN  = gnn.GIN
)

// Implementation selects the layer implementation variant (§7.1). The zero
// value picks Combined, the full software stack.
type Implementation int

// Implementation variants, from the baselines to the full software stack.
const (
	Default Implementation = iota
	DistGNNBaseline
	MKLBaseline
	Basic
	Fusion
	Compression
	Combined
)

// String implements fmt.Stringer with the paper's labels.
func (i Implementation) String() string { return i.impl().String() }

func (i Implementation) impl() gnn.Impl {
	switch i {
	case DistGNNBaseline:
		return gnn.ImplDistGNN
	case MKLBaseline:
		return gnn.ImplMKL
	case Basic:
		return gnn.ImplBasic
	case Fusion:
		return gnn.ImplFused
	case Compression:
		return gnn.ImplCompressed
	default:
		return gnn.ImplCombined
	}
}

// Profile identifies one of the paper's dataset shapes (Table 3),
// reproduced by the synthetic generator.
type Profile = graph.Profile

// Dataset profiles.
const (
	ProfileProducts  = graph.Products
	ProfileWikipedia = graph.Wikipedia
	ProfilePapers    = graph.Papers
	ProfileTwitter   = graph.Twitter
)

// Workload is a prepared (graph, features, labels) bundle.
type Workload = gnn.Workload

// EpochResult reports one training epoch.
type EpochResult = gnn.EpochResult

// Config configures an Engine.
type Config struct {
	// Model is GCN or SAGE.
	Model Model
	// Dims is the layer width chain: input, hidden..., output classes.
	Dims []int
	// Impl selects the implementation variant (default Combined).
	Impl Implementation
	// Dropout is the training-time hidden-feature dropout (§2.2).
	Dropout float64
	// Threads bounds worker parallelism (<=0 → GOMAXPROCS).
	Threads int
	// BlockSize is the fused block B (§4.2; default 64).
	BlockSize int
	// LocalityOrder enables the §4.4 vertex reordering. The paper applies
	// it to training, where the O(|E|+|V|) cost amortises over epochs.
	LocalityOrder bool
	// LearningRate is the SGD step for trainers (default 0.1).
	LearningRate float32
	// Seed makes weight init and dropout deterministic.
	Seed int64
	// Trace, when non-nil, enables telemetry and receives the Chrome
	// trace_event JSON (loadable in chrome://tracing or Perfetto) when
	// WriteTrace is called after a run.
	Trace io.Writer
	// Metrics enables kernel counters and scheduler accounting without
	// span export; implied by Trace. Read results via Metrics() or
	// WriteMetrics.
	Metrics bool
}

// Engine runs GNN inference and builds trainers with a fixed configuration.
type Engine struct {
	cfg Config
	net *gnn.Network
	tel *telemetry.Sink
}

// NewEngine validates the config and initialises the network weights.
func NewEngine(cfg Config) (*Engine, error) {
	net, err := gnn.NewNetwork(gnn.Config{Kind: cfg.Model, Dims: cfg.Dims, Dropout: cfg.Dropout, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	e := &Engine{cfg: cfg, net: net}
	if cfg.Trace != nil || cfg.Metrics {
		e.tel = telemetry.New(0)
	}
	return e, nil
}

// Metrics is a point-in-time copy of the engine's kernel counters and
// per-worker scheduler accounting (zero-valued when telemetry is off).
type Metrics = telemetry.Snapshot

// Metrics snapshots the engine's telemetry counters.
func (e *Engine) Metrics() Metrics { return e.tel.Snapshot() }

// WriteMetrics writes the plain-text metrics snapshot (Prometheus-style
// "name value" lines) to w.
func (e *Engine) WriteMetrics(w io.Writer) error { return e.tel.WriteMetrics(w) }

// WriteTrace exports the phase spans recorded so far as Chrome trace_event
// JSON to the Config.Trace writer.
func (e *Engine) WriteTrace() error {
	if e.cfg.Trace == nil {
		return fmt.Errorf("graphite: no Config.Trace writer configured")
	}
	return e.tel.WriteTrace(e.cfg.Trace)
}

// ResetTelemetry clears counters and recorded spans, so successive runs on
// one engine can be profiled independently.
func (e *Engine) ResetTelemetry() { e.tel.Reset() }

// NumParams returns the number of trainable scalars.
func (e *Engine) NumParams() int { return e.net.NumParams() }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// NewWorkload prepares a graph + features (+ optional labels) for this
// engine: self loops are added and the model's normalization factors are
// precomputed (shared by all kernels and DMA descriptors).
func (e *Engine) NewWorkload(g *Graph, x *Matrix, labels []int32) (*Workload, error) {
	if len(e.cfg.Dims) > 0 && x != nil && x.Cols != e.cfg.Dims[0] {
		return nil, fmt.Errorf("graphite: features have %d columns, engine expects %d", x.Cols, e.cfg.Dims[0])
	}
	return gnn.NewWorkload(g, e.cfg.Model, x, labels)
}

func (e *Engine) runOptions(w *Workload) gnn.RunOptions {
	opts := gnn.RunOptions{
		Impl:      e.cfg.Impl.impl(),
		Threads:   e.cfg.Threads,
		BlockSize: e.cfg.BlockSize,
		Tel:       e.tel,
	}
	if e.cfg.LocalityOrder {
		sp := e.tel.Begin(telemetry.PhaseReorder)
		opts.Order = locality.Reorder(w.G)
		sp.End()
	}
	return opts
}

// Infer runs a full-batch forward pass and returns the logits.
func (e *Engine) Infer(w *Workload) (*Matrix, error) {
	st, err := gnn.Infer(e.net, w, e.runOptions(w))
	if err != nil {
		return nil, err
	}
	return st.Logits(), nil
}

// Trainer drives full-batch training epochs.
type Trainer struct {
	inner *gnn.Trainer
}

// NewTrainer builds a trainer over a labeled workload.
func (e *Engine) NewTrainer(w *Workload) (*Trainer, error) {
	tr, err := gnn.NewTrainer(e.net, w, e.runOptions(w), e.cfg.LearningRate)
	if err != nil {
		return nil, err
	}
	return &Trainer{inner: tr}, nil
}

// Epoch runs one training epoch.
func (t *Trainer) Epoch() (EpochResult, error) { return t.inner.Epoch() }

// Train runs the given number of epochs.
func (t *Trainer) Train(epochs int) ([]EpochResult, error) { return t.inner.Train(epochs) }

// Accuracy scores logits against labels (label < 0 = unlabeled).
func Accuracy(logits *Matrix, labels []int32) float64 { return gnn.Accuracy(logits, labels) }

// NewMatrix allocates a zeroed rows×cols feature matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// RandomFeatures fills a fresh rows×cols matrix with uniform values and the
// given zero fraction (the paper's synthetic feature population, §6).
func RandomFeatures(rows, cols int, sparsity float64, seed int64) *Matrix {
	m := tensor.NewMatrix(rows, cols)
	m.FillSparse(rand.New(rand.NewSource(seed)), 1, sparsity)
	return m
}

// GenerateGraph builds a scaled synthetic instance of a Table 3 dataset
// profile.
func GenerateGraph(p Profile, numVertices int) (*Graph, error) {
	return graph.GenerateProfile(p, numVertices)
}

// NewGraphFromEdges builds a graph from (src, dst) edge pairs.
func NewGraphFromEdges(numVertices int, src, dst []int32) (*Graph, error) {
	return graph.FromEdges(numVertices, src, dst)
}

// ReadGraph parses a plain-text edge list.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes a graph as a plain-text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReorderForLocality computes the §4.4 processing order explicitly, for
// callers that want to inspect or persist it.
func ReorderForLocality(g *Graph) []int32 { return locality.Reorder(g) }
