package graphite

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7), each delegating to the shared experiment harness at a reduced scale
// so `go test -bench=.` completes in minutes. cmd/graphite-bench runs the
// same experiments at full scale with the paper's numbers printed alongside.
//
// Additional Benchmark_Ablation* targets cover the design decisions listed
// in DESIGN.md §5.

import (
	"math/rand"
	"strconv"
	"testing"

	"graphite/internal/bench"
	"graphite/internal/compress"
	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/kernels"
	"graphite/internal/locality"
	"graphite/internal/sched"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

func benchConfig() bench.Config {
	return bench.Config{Scale: 4000, SimScale: 1500, Hidden: 64, SimCores: 4}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", rep)
		}
	}
}

func BenchmarkTable3DatasetStats(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkFig2SampledTraining(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig3PipelineBreakdown(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig11aInference(b *testing.B)            { runExperiment(b, "fig11a") }
func BenchmarkFig11bTraining(b *testing.B)             { runExperiment(b, "fig11b") }
func BenchmarkFig11aInferenceSim(b *testing.B)         { runExperiment(b, "fig11a-sim") }
func BenchmarkFig11bTrainingSim(b *testing.B)          { runExperiment(b, "fig11b-sim") }
func BenchmarkFig12aDMAInference(b *testing.B)         { runExperiment(b, "fig12a") }
func BenchmarkFig12bDMATraining(b *testing.B)          { runExperiment(b, "fig12b") }
func BenchmarkFig13FusionBreakdown(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14CompressionSweep(b *testing.B)      { runExperiment(b, "fig14") }
func BenchmarkFig15LocalityVsRandom(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkFig16TrackingTable(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkTable4Characterization(b *testing.B)     { runExperiment(b, "table4") }
func BenchmarkTable5CacheAccessReduction(b *testing.B) { runExperiment(b, "table5") }

// --- Ablation benches (DESIGN.md §5) ---

func ablationFixture(b *testing.B, p graph.Profile, n, cols int) (*graph.CSR, []float32, *tensor.Matrix) {
	b.Helper()
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		b.Fatal(err)
	}
	g = g.AddSelfLoops()
	f := sparse.Factors(g, sparse.NormGCN)
	h := tensor.NewMatrix(g.NumVertices(), cols)
	h.FillSparse(rand.New(rand.NewSource(1)), 1, 0.5)
	return g, f, h
}

// D1: dynamic vs static scheduling of the aggregation under power-law
// degree skew.
func BenchmarkAblationScheduling(b *testing.B) {
	g, f, h := ablationFixture(b, graph.Twitter, 6000, 64)
	out := tensor.NewMatrix(g.NumVertices(), 64)
	src := kernels.NewDenseSource(h)
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Basic(out, g, f, src, kernels.Options{Threads: 4})
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.DistGNN(out, g, f, h, 4)
		}
	})
}

// D2: fused block size B — the a block must stay cache resident between the
// aggregation and update halves.
func BenchmarkAblationFusedBlockSize(b *testing.B) {
	g, err := graph.GenerateProfile(graph.Products, 4000)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewMatrix(g.NumVertices(), 64)
	x.FillSparse(rand.New(rand.NewSource(2)), 1, 0.5)
	w, err := gnn.NewWorkload(g, gnn.GCN, x, nil)
	if err != nil {
		b.Fatal(err)
	}
	net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{64, 64}, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, blockSize := range []int{8, 64, 512, 4096} {
		b.Run(sizeName(blockSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gnn.Forward(net, w, gnn.RunOptions{Impl: gnn.ImplFused, BlockSize: blockSize}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// D3: fixed-capacity compressed rows (O(1) addressing) vs materialising
// dense rows on every access.
func BenchmarkAblationCompressedLayout(b *testing.B) {
	g, f, h := ablationFixture(b, graph.Products, 4000, 64)
	cm := compress.FromDense(h, 0)
	out := tensor.NewMatrix(g.NumVertices(), 64)
	b.Run("fused-decompress-axpy", func(b *testing.B) {
		src := kernels.NewCompressedSource(cm)
		for i := 0; i < b.N; i++ {
			kernels.Basic(out, g, f, src, kernels.Options{})
		}
	})
	b.Run("decompress-then-axpy", func(b *testing.B) {
		row := make([]float32, 64)
		for i := 0; i < b.N; i++ {
			for v := 0; v < g.NumVertices(); v++ {
				dst := out.Row(v)
				clear(dst)
				for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
					cm.DecompressRow(row, int(g.Col[e]))
					tensor.AXPY(dst, row, f[e])
				}
			}
		}
	})
}

// D4: width-specialised kernels (the JIT substitute) vs the generic loop.
func BenchmarkAblationKernelSpecialization(b *testing.B) {
	const cols = 256
	dst := make([]float32, cols)
	src := make([]float32, cols)
	for j := range src {
		src[j] = float32(j)
	}
	b.Run("specialized", func(b *testing.B) {
		axpy := kernels.MakeAXPY(cols)
		for i := 0; i < b.N; i++ {
			axpy(dst, src, 1.0001)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.AXPY(dst, src, 1.0001)
		}
	})
}

// D6: Algorithm 3's highest-degree-neighbour grouping vs grouping under the
// first neighbour.
func BenchmarkAblationLocalityGreedy(b *testing.B) {
	g, err := graph.GenerateProfile(graph.Products, 6000)
	if err != nil {
		b.Fatal(err)
	}
	firstNeighborOrder := func(g *graph.CSR) []int32 {
		n := g.NumVertices()
		groups := make([][]int32, n)
		for v := 0; v < n; v++ {
			u := v
			if nbr := g.Neighbors(v); len(nbr) > 0 {
				u = int(nbr[0])
			}
			groups[u] = append(groups[u], int32(v))
		}
		order := make([]int32, 0, n)
		for _, grp := range groups {
			order = append(order, grp...)
		}
		return order
	}
	b.Run("highest-degree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order := locality.Reorder(g)
			if hr, err := locality.HitRate(g, order, 128); err != nil || hr <= 0 {
				b.Fatal("bad hit rate", err)
			}
		}
	})
	b.Run("first-neighbor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order := firstNeighborOrder(g)
			if hr, err := locality.HitRate(g, order, 128); err != nil || hr <= 0 {
				b.Fatal("bad hit rate", err)
			}
		}
	})
}

// Scheduling substrate overhead.
func BenchmarkSchedDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched.Dynamic(100_000, 256, 4, func(s, e int) {})
	}
}

func sizeName(n int) string { return "B" + strconv.Itoa(n) }
